// Determinism suite for sharded parallel ingest and the vectorized matcher
// (ISSUE 9): ToFacts must produce a bit-identical FactDatabase — relation
// contents, row insertion order, identifier assignment, relation uid order —
// at any ingest worker count; full migrations must agree on outputs, stats,
// and engine counters across ingest threads {1, 2, 8} on relational,
// document, and graph instances; and the engine's vectorized matcher must be
// bit-identical across probe block sizes (1 == scalar, 1024 == default).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datalog/engine.h"
#include "migrate/facts.h"
#include "migrate/migrator.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "value/database.h"
#include "workload/benchmarks.h"
#include "workload/datagen.h"

namespace dynamite {
namespace {

/// Bit-identity: same rows in the same insertion order (strictly stronger
/// than SetEquals — it pins the shard-merge order to the sequential
/// depth-first emission order).
void ExpectBitIdentical(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.arity(), b.arity());
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a.row_hash(r), b.row_hash(r)) << a.name() << " row " << r;
    for (size_t c = 0; c < a.arity(); ++c) {
      ASSERT_EQ(a.cell(r, c), b.cell(r, c)) << a.name() << " row " << r << " col " << c;
    }
  }
}

void ExpectDbBitIdentical(const FactDatabase& a, const FactDatabase& b) {
  ASSERT_EQ(a.RelationNames(), b.RelationNames());
  for (const std::string& name : a.RelationNames()) {
    ExpectBitIdentical(*a.Find(name).ValueOrDie(), *b.Find(name).ValueOrDie());
  }
}

/// One benchmark per source-instance shape (Table 2 names): MLB is a
/// relational family, Yelp document, Tencent graph.
const char* const kShapeBenchmarks[] = {"MLB-1", "Yelp-1", "Tencent-1"};

RecordForest BigInstance(const workload::Benchmark& bench) {
  // Scale chosen to clear the ingest sharding threshold (128 roots) with
  // lots of headroom, so chunking is non-trivial at 8 workers.
  auto instance = workload::GenerateSource(bench, /*seed=*/11, /*scale=*/300);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return std::move(instance).ValueOrDie();
}

IngestOptions WithPool(ThreadPool* pool, IngestStats* stats) {
  IngestOptions options;
  options.pool_provider = [pool]() { return pool; };
  options.stats = stats;
  return options;
}

// ----------------------------------------------- ToFacts determinism ------

TEST(ShardedIngest, BitIdenticalAcrossWorkerCounts) {
  for (const char* name : kShapeBenchmarks) {
    const workload::Benchmark* bench = workload::FindBenchmark(name);
    ASSERT_NE(bench, nullptr);
    RecordForest instance = BigInstance(*bench);

    uint64_t seq_next_id = 1;
    auto seq = ToFacts(instance, bench->source, &seq_next_id, nullptr);
    ASSERT_TRUE(seq.ok()) << name << ": " << seq.status().ToString();

    for (size_t workers : {2u, 8u}) {
      ThreadPool pool(workers - 1);
      IngestStats stats;
      uint64_t par_next_id = 1;
      auto par = ToFacts(instance, bench->source, &par_next_id, nullptr,
                         WithPool(&pool, &stats));
      ASSERT_TRUE(par.ok()) << name << ": " << par.status().ToString();
      EXPECT_GT(stats.parallel_chunks, 0u) << name << " workers=" << workers;
      EXPECT_EQ(stats.ingest_fallbacks, 0u);
      EXPECT_EQ(seq_next_id, par_next_id) << name << " workers=" << workers;
      ExpectDbBitIdentical(seq.ValueOrDie(), par.ValueOrDie());
    }
  }
}

TEST(ShardedIngest, RelationUidOrderMatchesDeclarationOrder) {
  const workload::Benchmark* bench = workload::FindBenchmark("Yelp-1");
  ASSERT_NE(bench, nullptr);
  RecordForest instance = BigInstance(*bench);
  ThreadPool pool(3);
  IngestStats stats;
  uint64_t next_id = 1;
  auto db = ToFacts(instance, bench->source, &next_id, nullptr, WithPool(&pool, &stats));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_GT(stats.parallel_chunks, 0u);
  // Relations are declared single-threaded in schema RecordNames() order
  // even on the sharded path, so uids ascend in that order — the property
  // uid-keyed index caches depend on for cross-run stability.
  uint64_t prev_uid = 0;
  for (const std::string& rec : bench->source.RecordNames()) {
    const Relation* rel = db.ValueOrDie().Find(rec).ValueOrDie();
    EXPECT_GT(rel->uid(), prev_uid) << rec;
    prev_uid = rel->uid();
  }
}

TEST(ShardedIngest, SmallForestNeverTouchesThePool) {
  const workload::Benchmark* bench = workload::FindBenchmark("MLB-1");
  ASSERT_NE(bench, nullptr);
  auto small = workload::GenerateSource(*bench, 3, /*scale=*/20);
  ASSERT_TRUE(small.ok());
  bool provider_called = false;
  IngestOptions options;
  options.pool_provider = [&provider_called]() -> ThreadPool* {
    provider_called = true;
    return nullptr;
  };
  IngestStats stats;
  options.stats = &stats;
  uint64_t next_id = 1;
  auto db = ToFacts(small.ValueOrDie(), bench->source, &next_id, nullptr, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Below the sharding threshold the pool is never even resolved — small
  // migrations must not pay thread spawn.
  EXPECT_FALSE(provider_called);
  EXPECT_EQ(stats.parallel_chunks, 0u);
}

TEST(ShardedIngest, ShardFaultDegradesToIdenticalSequentialOutput) {
  const workload::Benchmark* bench = workload::FindBenchmark("Tencent-1");
  ASSERT_NE(bench, nullptr);
  RecordForest instance = BigInstance(*bench);
  uint64_t seq_next_id = 1;
  auto seq = ToFacts(instance, bench->source, &seq_next_id, nullptr);
  ASSERT_TRUE(seq.ok());

  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::ArmFromString("ingest.shard", "hit_1:resource").ok());
  ThreadPool pool(3);
  IngestStats stats;
  uint64_t par_next_id = 1;
  auto par =
      ToFacts(instance, bench->source, &par_next_id, nullptr, WithPool(&pool, &stats));
  failpoint::DisarmAll();
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(stats.ingest_fallbacks, 1u);
  EXPECT_EQ(stats.parallel_chunks, 0u);
  EXPECT_EQ(seq_next_id, par_next_id);
  ExpectDbBitIdentical(seq.ValueOrDie(), par.ValueOrDie());
}

// ------------------------------------- end-to-end migration parity --------

TEST(ShardedIngest, MigrationOutputsAndStatsAgreeAcrossIngestThreads) {
  for (const char* name : kShapeBenchmarks) {
    const workload::Benchmark* bench = workload::FindBenchmark(name);
    ASSERT_NE(bench, nullptr);
    RecordForest instance = BigInstance(*bench);

    DatalogEngine::Options seq_opts;
    seq_opts.num_threads = 1;
    Migrator seq(bench->source, bench->target, seq_opts);
    MigrationStats seq_stats;
    auto seq_out = seq.Migrate(bench->golden, instance, &seq_stats);
    ASSERT_TRUE(seq_out.ok()) << name << ": " << seq_out.status().ToString();

    for (size_t threads : {2u, 8u}) {
      DatalogEngine::Options par_opts;
      par_opts.num_threads = threads;
      Migrator par(bench->source, bench->target, par_opts);
      MigrationStats par_stats;
      auto par_out = par.Migrate(bench->golden, instance, &par_stats);
      ASSERT_TRUE(par_out.ok()) << name << ": " << par_out.status().ToString();
      EXPECT_TRUE(ForestEquals(seq_out.ValueOrDie(), par_out.ValueOrDie()))
          << name << " threads=" << threads;
      // Everything except timings and the worker-count-dependent chunk
      // diagnostics is part of the bit-identity contract.
      EXPECT_EQ(seq_stats.source_records, par_stats.source_records) << name;
      EXPECT_EQ(seq_stats.source_facts, par_stats.source_facts) << name;
      EXPECT_EQ(seq_stats.target_facts, par_stats.target_facts) << name;
      EXPECT_EQ(seq_stats.target_records, par_stats.target_records) << name;
      EXPECT_EQ(seq_stats.ingest.child_index_builds, par_stats.ingest.child_index_builds)
          << name;
      EXPECT_EQ(seq_stats.ingest.child_index_lookups, par_stats.ingest.child_index_lookups)
          << name;
      EXPECT_GT(par_stats.ingest.parallel_chunks, 0u) << name << " threads=" << threads;
      EXPECT_EQ(seq.engine_stats().plan_refreshes, par.engine_stats().plan_refreshes)
          << name;
      EXPECT_EQ(par.engine_stats().parallel_fallbacks, 0u) << name;
    }
  }
}

// ------------------------------------------- block-size invariance --------

/// Skewed int edge relation: Zipf-distributed targets give hash groups with
/// giant posting lists, the adversarial shape for batched probes.
FactDatabase SkewedEdges(int n) {
  FactDatabase db;
  db.DeclareRelation("edge", {"s", "t"}).ValueOrDie();
  Rng rng(99);
  workload::ZipfDist zipf(n, 1.1);
  for (int i = 0; i < n; ++i) {
    db.AddFact("edge", Tuple({Value::Int(i), Value::Int(static_cast<int64_t>(
                                                 zipf.Sample(&rng)))}));
    db.AddFact("edge", Tuple({Value::Int(i), Value::Int((i * 7 + 3) % n)}));
  }
  return db;
}

DatalogEngine BlockEngine(size_t block_rows, size_t threads) {
  DatalogEngine::Options opts;
  opts.num_threads = threads;
  opts.probe_block_rows = block_rows;
  return DatalogEngine(opts);
}

TEST(VectorizedProbes, BlockSizeInvariantJoin) {
  FactDatabase db = SkewedEdges(600);
  Program join = Program::Parse("j(x, z) :- edge(x, y), edge(y, z).").ValueOrDie();
  auto baseline = BlockEngine(/*block_rows=*/1, /*threads=*/1).EvalAutoSignatures(join, db);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const Relation* j1 = baseline.ValueOrDie().Find("j").ValueOrDie();
  ASSERT_GT(j1->size(), 0u);

  for (size_t block : {3u, 64u, 1024u}) {
    for (size_t threads : {1u, 4u}) {
      auto out = BlockEngine(block, threads).EvalAutoSignatures(join, db);
      ASSERT_TRUE(out.ok()) << "block=" << block << ": " << out.status().ToString();
      ExpectBitIdentical(*j1, *out.ValueOrDie().Find("j").ValueOrDie());
    }
  }
}

TEST(VectorizedProbes, BlockSizeInvariantRecursiveFixpoint) {
  FactDatabase db = SkewedEdges(150);
  Program tc = Program::Parse(R"(
    tc(x, y) :- edge(x, y).
    tc(x, y) :- tc(x, z), edge(z, y).
  )")
                   .ValueOrDie();
  auto baseline = BlockEngine(1, 1).EvalAutoSignatures(tc, db);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const Relation* tc1 = baseline.ValueOrDie().Find("tc").ValueOrDie();

  for (size_t block : {2u, 1024u}) {
    for (size_t threads : {1u, 8u}) {
      auto out = BlockEngine(block, threads).EvalAutoSignatures(tc, db);
      ASSERT_TRUE(out.ok()) << "block=" << block << ": " << out.status().ToString();
      ExpectBitIdentical(*tc1, *out.ValueOrDie().Find("tc").ValueOrDie());
    }
  }
}

// ------------------------------------------------ datagen sanity ----------

TEST(Datagen, ZipfDistIsDeterministicAndSkewed) {
  workload::ZipfDist zipf(100, 1.0);
  Rng a(42), b(42);
  size_t head = 0;
  for (int i = 0; i < 2000; ++i) {
    size_t sa = zipf.Sample(&a);
    ASSERT_EQ(sa, zipf.Sample(&b));
    ASSERT_LT(sa, 100u);
    if (sa == 0) ++head;
  }
  // Zipf(1.0) over 100 ranks puts ~19% of the mass on rank 0; uniform would
  // put 1%. Anything above 10% demonstrates the skew without flaking.
  EXPECT_GT(head, 200u);
}

TEST(Datagen, ZipfFlatInstanceShapes) {
  std::vector<workload::FlatColumn> cols = workload::WideColumns(30, 8);
  ASSERT_EQ(cols.size(), 30u);
  Rng rng(5);
  RecordForest forest = workload::ZipfFlatInstance("W", cols, 200, 0.9, &rng);
  ASSERT_EQ(forest.roots.size(), 200u);
  for (const RecordNode& rec : forest.roots) {
    ASSERT_EQ(rec.type, "W");
    ASSERT_EQ(rec.prims.size(), 30u);
  }
}

}  // namespace
}  // namespace dynamite
