// Unit and property tests for the CDCL SAT solver and the finite-domain
// layer (the Z3 substrate).

#include <gtest/gtest.h>

#include <bitset>

#include "solver/fd.h"
#include "solver/sat.h"
#include "testing.h"
#include "util/rng.h"

namespace dynamite {
namespace {

using sat::Lit;
using sat::MkLit;
using sat::SatSolver;
using sat::Var;

TEST(Sat, TrivialSat) {
  SatSolver s;
  Var a = s.NewVar();
  s.AddClause({MkLit(a)});
  EXPECT_EQ(s.Solve(), SatSolver::Outcome::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

TEST(Sat, TrivialUnsat) {
  SatSolver s;
  Var a = s.NewVar();
  EXPECT_TRUE(s.AddClause({MkLit(a)}));
  EXPECT_FALSE(s.AddClause({MkLit(a, true)}));
  EXPECT_EQ(s.Solve(), SatSolver::Outcome::kUnsat);
}

TEST(Sat, EmptyClauseIsUnsat) {
  SatSolver s;
  EXPECT_FALSE(s.AddClause({}));
  EXPECT_EQ(s.Solve(), SatSolver::Outcome::kUnsat);
}

TEST(Sat, TautologyIgnored) {
  SatSolver s;
  Var a = s.NewVar();
  EXPECT_TRUE(s.AddClause({MkLit(a), MkLit(a, true)}));
  EXPECT_EQ(s.Solve(), SatSolver::Outcome::kSat);
}

TEST(Sat, PigeonHole3Into2IsUnsat) {
  // php(3,2): 3 pigeons, 2 holes — classic small UNSAT instance requiring
  // actual search.
  SatSolver s;
  Var p[3][2];
  for (auto& row : p) {
    for (Var& v : row) v = s.NewVar();
  }
  for (int i = 0; i < 3; ++i) {
    s.AddClause({MkLit(p[i][0]), MkLit(p[i][1])});
  }
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s.AddClause({MkLit(p[i][h], true), MkLit(p[j][h], true)});
      }
    }
  }
  EXPECT_EQ(s.Solve(), SatSolver::Outcome::kUnsat);
}

TEST(Sat, IncrementalBlockingClauses) {
  // Enumerate all 8 models of 3 free variables by blocking each.
  SatSolver s;
  Var v[3] = {s.NewVar(), s.NewVar(), s.NewVar()};
  s.AddClause({MkLit(v[0]), MkLit(v[0], true)});  // touch solver
  int models = 0;
  while (s.Solve() == SatSolver::Outcome::kSat && models < 20) {
    ++models;
    std::vector<Lit> block;
    for (Var x : v) block.push_back(MkLit(x, s.ModelValue(x)));
    if (!s.AddClause(block)) break;
  }
  EXPECT_EQ(models, 8);
}

/// Reference brute-force SAT check for property testing.
bool BruteForceSat(int num_vars, const std::vector<std::vector<Lit>>& clauses) {
  for (uint32_t assignment = 0; assignment < (1u << num_vars); ++assignment) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (Lit l : clause) {
        bool val = ((assignment >> sat::VarOf(l)) & 1) != 0;
        if (sat::SignOf(l)) val = !val;
        if (val) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

// Property test: CDCL agrees with brute force on random 3-CNF.
class SatRandomCnf : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomCnf, AgreesWithBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int num_vars = 8;
  const int num_clauses = 3 + static_cast<int>(rng.NextBelow(40));
  SatSolver solver;
  for (int i = 0; i < num_vars; ++i) solver.NewVar();
  std::vector<std::vector<Lit>> clauses;
  bool trivially_unsat = false;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    int width = 1 + static_cast<int>(rng.NextBelow(3));
    for (int k = 0; k < width; ++k) {
      clause.push_back(MkLit(static_cast<Var>(rng.NextBelow(num_vars)), rng.NextBool()));
    }
    clauses.push_back(clause);
    if (!solver.AddClause(clause)) trivially_unsat = true;
  }
  bool expected = BruteForceSat(num_vars, clauses);
  if (trivially_unsat) {
    EXPECT_FALSE(expected);
    return;
  }
  SatSolver::Outcome outcome = solver.Solve();
  EXPECT_EQ(outcome == SatSolver::Outcome::kSat, expected);
  if (outcome == SatSolver::Outcome::kSat) {
    // The returned model must actually satisfy every clause.
    for (const auto& clause : clauses) {
      bool any = false;
      for (Lit l : clause) {
        if (solver.ModelValue(sat::VarOf(l)) != sat::SignOf(l)) any = true;
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomCnf, ::testing::Range(0, 50));

TEST(Fd, DomainRespected) {
  FdSolver s;
  FdVar x = s.NewVar("x", {3, 5, 9});
  ASSERT_OK_AND_ASSIGN(bool sat1, s.Solve());
  ASSERT_TRUE(sat1);
  int64_t v = s.ModelValue(x);
  EXPECT_TRUE(v == 3 || v == 5 || v == 9);
}

TEST(Fd, EqConstraintPinsValue) {
  FdSolver s;
  FdVar x = s.NewVar("x", {1, 2, 3});
  ASSERT_OK(s.AddConstraint(FdExpr::Eq(x, 2)));
  ASSERT_OK_AND_ASSIGN(bool sat1, s.Solve());
  ASSERT_TRUE(sat1);
  EXPECT_EQ(s.ModelValue(x), 2);
}

TEST(Fd, EqOutOfDomainIsFalse) {
  FdSolver s;
  FdVar x = s.NewVar("x", {1, 2});
  ASSERT_OK(s.AddConstraint(FdExpr::Eq(x, 99)));
  ASSERT_OK_AND_ASSIGN(bool sat1, s.Solve());
  EXPECT_FALSE(sat1);
}

TEST(Fd, VarEqVarSharedDomain) {
  FdSolver s;
  FdVar x = s.NewVar("x", {1, 2, 3});
  FdVar y = s.NewVar("y", {2, 3, 4});
  ASSERT_OK(s.AddConstraint(FdExpr::EqVar(x, y)));
  ASSERT_OK_AND_ASSIGN(bool sat1, s.Solve());
  ASSERT_TRUE(sat1);
  EXPECT_EQ(s.ModelValue(x), s.ModelValue(y));
}

TEST(Fd, VarEqVarDisjointDomainsUnsat) {
  FdSolver s;
  FdVar x = s.NewVar("x", {1, 2});
  FdVar y = s.NewVar("y", {3, 4});
  ASSERT_OK(s.AddConstraint(FdExpr::EqVar(x, y)));
  ASSERT_OK_AND_ASSIGN(bool sat1, s.Solve());
  EXPECT_FALSE(sat1);
}

TEST(Fd, NotEqVar) {
  FdSolver s;
  FdVar x = s.NewVar("x", {1, 2});
  FdVar y = s.NewVar("y", {1, 2});
  ASSERT_OK(s.AddConstraint(FdExpr::Not(FdExpr::EqVar(x, y))));
  ASSERT_OK_AND_ASSIGN(bool sat1, s.Solve());
  ASSERT_TRUE(sat1);
  EXPECT_NE(s.ModelValue(x), s.ModelValue(y));
}

TEST(Fd, BlockingClauseEnumeration) {
  // Enumerate all 6 models of two independent vars by blocking.
  FdSolver s;
  FdVar x = s.NewVar("x", {1, 2});
  FdVar y = s.NewVar("y", {1, 2, 3});
  int models = 0;
  for (;;) {
    ASSERT_OK_AND_ASSIGN(bool sat1, s.Solve());
    if (!sat1) break;
    ++models;
    ASSERT_LE(models, 10);
    ASSERT_OK(s.AddConstraint(FdExpr::Not(FdExpr::And(
        {FdExpr::Eq(x, s.ModelValue(x)), FdExpr::Eq(y, s.ModelValue(y))}))));
  }
  EXPECT_EQ(models, 6);
}

TEST(Fd, ComplexNestedFormula) {
  FdSolver s;
  FdVar x = s.NewVar("x", {1, 2, 3});
  FdVar y = s.NewVar("y", {1, 2, 3});
  // (x=1 | x=2) & !(x=y) & (y=1 | y=3)
  ASSERT_OK(s.AddConstraint(
      FdExpr::And({FdExpr::Or({FdExpr::Eq(x, 1), FdExpr::Eq(x, 2)}),
                   FdExpr::Not(FdExpr::EqVar(x, y)),
                   FdExpr::Or({FdExpr::Eq(y, 1), FdExpr::Eq(y, 3)})})));
  ASSERT_OK_AND_ASSIGN(bool sat1, s.Solve());
  ASSERT_TRUE(sat1);
  int64_t xv = s.ModelValue(x), yv = s.ModelValue(y);
  EXPECT_TRUE(xv == 1 || xv == 2);
  EXPECT_TRUE(yv == 1 || yv == 3);
  EXPECT_NE(xv, yv);
}

// Property test: the FD layer agrees with explicit enumeration on random
// equality formulas.
class FdRandomFormula : public ::testing::TestWithParam<int> {};

TEST_P(FdRandomFormula, ModelCountMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  const int num_vars = 3;
  const int domain_size = 3;
  FdSolver s;
  std::vector<FdVar> vars;
  for (int i = 0; i < num_vars; ++i) {
    s.NewVar("v" + std::to_string(i), {0, 1, 2});
    vars.push_back(FdVar{i});
  }
  // Random constraint: conjunction of 3 random (dis)equalities.
  struct Constraint {
    int a, b;
    bool eq;
    bool against_const;
    int64_t c;
  };
  std::vector<Constraint> constraints;
  std::vector<FdExpr> exprs;
  for (int k = 0; k < 3; ++k) {
    Constraint con;
    con.a = static_cast<int>(rng.NextBelow(num_vars));
    con.b = static_cast<int>(rng.NextBelow(num_vars));
    con.eq = rng.NextBool();
    con.against_const = rng.NextBool();
    con.c = static_cast<int64_t>(rng.NextBelow(domain_size));
    constraints.push_back(con);
    FdExpr base = con.against_const ? FdExpr::Eq(vars[static_cast<size_t>(con.a)], con.c)
                                    : FdExpr::EqVar(vars[static_cast<size_t>(con.a)],
                                                    vars[static_cast<size_t>(con.b)]);
    exprs.push_back(con.eq ? base : FdExpr::Not(base));
  }
  ASSERT_OK(s.AddConstraint(FdExpr::And(exprs)));

  // Count models by blocking; compare against explicit enumeration.
  int solver_models = 0;
  for (;;) {
    ASSERT_OK_AND_ASSIGN(bool sat1, s.Solve());
    if (!sat1) break;
    ++solver_models;
    ASSERT_LE(solver_models, 27);
    std::vector<FdExpr> eqs;
    for (int i = 0; i < num_vars; ++i) {
      eqs.push_back(FdExpr::Eq(vars[static_cast<size_t>(i)],
                               s.ModelValue(vars[static_cast<size_t>(i)])));
    }
    ASSERT_OK(s.AddConstraint(FdExpr::Not(FdExpr::And(eqs))));
  }
  int expected = 0;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        int val[3] = {a, b, c};
        bool ok = true;
        for (const Constraint& con : constraints) {
          bool holds = con.against_const ? (val[con.a] == con.c)
                                         : (val[con.a] == val[con.b]);
          if (holds != con.eq) {
            ok = false;
            break;
          }
        }
        if (ok) ++expected;
      }
    }
  }
  EXPECT_EQ(solver_models, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdRandomFormula, ::testing::Range(0, 30));

}  // namespace
}  // namespace dynamite
