// Shared test helpers: schemas and instances of the paper's motivating
// example (§2) and small builder shorthands.

#ifndef DYNAMITE_TESTS_TESTING_H_
#define DYNAMITE_TESTS_TESTING_H_

#include <gtest/gtest.h>

#include "instance/document.h"
#include "schema/schema_builder.h"
#include "synth/example.h"

namespace dynamite {
namespace testing {

#define ASSERT_OK(expr)                                     \
  do {                                                      \
    auto _st = (expr);                                      \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                \
  } while (false)

#define EXPECT_OK(expr)                                     \
  do {                                                      \
    auto _st = (expr);                                      \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                     \
  auto DYNAMITE_CONCAT_(_r_, __LINE__) = (expr);            \
  ASSERT_TRUE(DYNAMITE_CONCAT_(_r_, __LINE__).ok())         \
      << DYNAMITE_CONCAT_(_r_, __LINE__).status().ToString(); \
  lhs = std::move(DYNAMITE_CONCAT_(_r_, __LINE__)).ValueOrDie()

/// Source schema of §2: Univ documents with nested Admit.
inline Schema UnivSchema() {
  DocumentSchemaBuilder b;
  b.AddCollection("Univ", {{"id", PrimitiveType::kInt}, {"name", PrimitiveType::kString}});
  b.AddCollection("Admit", {{"uid", PrimitiveType::kInt}, {"count", PrimitiveType::kInt}},
                  "Univ");
  return b.Build().ValueOrDie();
}

/// Target schema of §2: flat Admission documents.
inline Schema AdmissionSchema() {
  DocumentSchemaBuilder b;
  b.AddCollection("Admission", {{"grad", PrimitiveType::kString},
                                {"ug", PrimitiveType::kString},
                                {"num", PrimitiveType::kInt}});
  return b.Build().ValueOrDie();
}

/// One Univ record with nested admits {uid, count}.
inline RecordNode UnivRecord(int64_t id, const std::string& name,
                             std::vector<std::pair<int64_t, int64_t>> admits) {
  RecordNode univ;
  univ.type = "Univ";
  univ.prims = {{"id", Value::Int(id)}, {"name", Value::String(name)}};
  std::vector<RecordNode> kids;
  for (auto [uid, count] : admits) {
    RecordNode admit;
    admit.type = "Admit";
    admit.prims = {{"uid", Value::Int(uid)}, {"count", Value::Int(count)}};
    kids.push_back(std::move(admit));
  }
  univ.children.push_back({"Admit", std::move(kids)});
  return univ;
}

inline RecordNode AdmissionRecord(const std::string& grad, const std::string& ug,
                                  int64_t num) {
  RecordNode rec;
  rec.type = "Admission";
  rec.prims = {{"grad", Value::String(grad)},
               {"ug", Value::String(ug)},
               {"num", Value::Int(num)}};
  return rec;
}

/// The example of Figure 2.
inline Example MotivatingExample() {
  Example e;
  e.input.roots.push_back(UnivRecord(1, "U1", {{1, 10}, {2, 50}}));
  e.input.roots.push_back(UnivRecord(2, "U2", {{2, 20}, {1, 40}}));
  e.output.roots.push_back(AdmissionRecord("U1", "U1", 10));
  e.output.roots.push_back(AdmissionRecord("U2", "U2", 20));
  e.output.roots.push_back(AdmissionRecord("U1", "U2", 50));
  e.output.roots.push_back(AdmissionRecord("U2", "U1", 40));
  return e;
}

/// Flat record builder for relational-style tests.
inline RecordNode FlatRecord(const std::string& type,
                             std::vector<std::pair<std::string, Value>> prims) {
  RecordNode rec;
  rec.type = type;
  rec.prims = std::move(prims);
  return rec;
}

}  // namespace testing
}  // namespace dynamite

#endif  // DYNAMITE_TESTS_TESTING_H_
