#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON dump produced by DYNAMITE_TRACE.

Two checks, both hard failures:

  1. Schema: the file is a JSON object with a "traceEvents" array; every
     event carries name/ph/pid/tid/ts; "X" (complete) events also carry a
     non-negative dur; "i" (instant) events carry scope "s"; "M" rows are
     thread_name metadata. Unknown phases fail -- the writer only emits
     M/X/i, so anything else means corruption.
  2. Coverage (--min-coverage): the union of non-root "X" intervals,
     clipped to the longest session.* root span, must cover at least the
     given fraction of that root span's duration. This is the ISSUE-10
     acceptance bar ("spans covering >=90% of wall time"): if a pipeline
     stage loses its span, coverage drops and this gate catches it.

Exit status: 0 on pass, 1 on any violation (each printed to stderr).
"""

import argparse
import json
import sys

KNOWN_PHASES = {"M", "X", "i"}


def validate_schema(events):
    errors = []
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                errors.append(f"{where}: missing '{key}'")
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            if e.get("name") != "thread_name":
                errors.append(f"{where}: metadata event is not thread_name")
            continue
        if "ts" not in e:
            errors.append(f"{where}: missing 'ts'")
        if ph == "X":
            if "dur" not in e:
                errors.append(f"{where}: complete event missing 'dur'")
            elif e["dur"] < 0:
                errors.append(f"{where}: negative dur {e['dur']}")
        if ph == "i" and e.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant event missing scope 's'")
    return errors


def union_length(intervals):
    """Total length of the union of [start, end) intervals."""
    total = 0.0
    last_end = None
    for start, end in sorted(intervals):
        if last_end is None or start > last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def check_coverage(events, min_coverage):
    spans = [e for e in events if e.get("ph") == "X"]
    roots = [e for e in spans if e["name"].startswith("session.")]
    if not roots:
        return ["no session.* root span in trace"]
    root = max(roots, key=lambda e: e["dur"])
    r0, r1 = root["ts"], root["ts"] + root["dur"]
    if root["dur"] <= 0:
        return [f"root span {root['name']} has zero duration"]
    clipped = []
    for e in spans:
        if e is root or e["name"].startswith("session."):
            continue
        s, t = max(e["ts"], r0), min(e["ts"] + e["dur"], r1)
        if t > s:
            clipped.append((s, t))
    coverage = union_length(clipped) / root["dur"]
    print(f"root {root['name']}: {root['dur'] / 1000.0:.3f}ms, "
          f"child-span coverage {coverage:.1%} "
          f"({len(clipped)} overlapping spans)")
    if coverage < min_coverage:
        return [f"coverage {coverage:.1%} below required {min_coverage:.0%}"]
    return []


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--min-coverage", type=float, default=None,
                        help="required fraction of the session root span "
                             "covered by child spans (e.g. 0.9)")
    args = parser.parse_args(argv)

    with open(args.trace) as f:
        doc = json.load(f)
    if "traceEvents" not in doc or not isinstance(doc["traceEvents"], list):
        print("trace: missing traceEvents array", file=sys.stderr)
        return 1
    events = doc["traceEvents"]

    errors = validate_schema(events)
    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    counts = {}
    for e in events:
        counts[e.get("ph")] = counts.get(e.get("ph"), 0) + 1
    print(f"{args.trace}: {len(events)} events "
          f"({counts.get('X', 0)} spans, {counts.get('i', 0)} instants, "
          f"{counts.get('M', 0)} metadata), {dropped} dropped")

    if args.min_coverage is not None:
        errors += check_coverage(events, args.min_coverage)

    for err in errors:
        print(f"FAIL: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
