#!/usr/bin/env python3
"""CI speedup gate: assert a parallel benchmark arm beats its sequential arm.

One script for the three parallel gates (fixpoint, synthesis, ingest) that
used to live as near-identical heredocs in ci.yml. Protocol, shared by all
callers:

  * The benchmark binary is run with --benchmark_repetitions=N and its JSON
    (DYNAMITE_BENCH_JSON) is handed to this script.
  * Per arm we take the BEST (minimum) wall_ms across repetitions -- min is
    robust to descheduling spikes on shared CI vCPUs, where mean/median are
    not. Aggregate rows (_mean/_median/_stddev/_cv) are ignored.
  * The gate asserts best(seq)/best(par) >= --min-ratio, but only on
    machines with at least --min-cores cores (default 4): below that the
    ratio measures oversubscription, not scaling, so the script prints the
    numbers and exits 0.

Exit status: 0 on pass or skip, 1 on a failed ratio or missing benchmark.
"""

import argparse
import json
import os
import sys

# google-benchmark emits one row per repetition plus these synthetic
# aggregate rows; only the raw repetitions participate in best-of-N.
AGGREGATE_SUFFIXES = ("_mean", "_median", "_stddev", "_cv")


def best_of(benchmarks, name):
    """Minimum wall_ms across repetitions of `name`, or None if absent."""
    best = None
    for b in benchmarks:
        if b["name"] != name:
            continue
        if best is None or b["wall_ms"] < best:
            best = b["wall_ms"]
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", required=True,
                        help="benchmark JSON file (DYNAMITE_BENCH_JSON output)")
    parser.add_argument("--seq", required=True,
                        help="benchmark name of the sequential arm")
    parser.add_argument("--par", required=True,
                        help="benchmark name of the parallel arm")
    parser.add_argument("--min-ratio", type=float, required=True,
                        help="required seq/par speedup on a capable machine")
    parser.add_argument("--min-cores", type=int, default=4,
                        help="skip (exit 0) on machines with fewer cores")
    parser.add_argument("--label", default=None,
                        help="human label for log lines (default: --par)")
    args = parser.parse_args(argv)

    label = args.label or args.par
    with open(args.json) as f:
        doc = json.load(f)
    benchmarks = [b for b in doc["benchmarks"]
                  if not b["name"].endswith(AGGREGATE_SUFFIXES)]

    seq = best_of(benchmarks, args.seq)
    par = best_of(benchmarks, args.par)
    if seq is None or par is None:
        missing = [n for n, v in ((args.seq, seq), (args.par, par)) if v is None]
        print(f"{label}: missing benchmark(s) {missing} in {args.json}",
              file=sys.stderr)
        return 1

    cores = os.cpu_count() or 1
    ratio = seq / par
    print(f"{label} best-of-N: seq {seq:.3f}ms par {par:.3f}ms "
          f"speedup {ratio:.2f}x ({cores} cores)")
    if cores < args.min_cores:
        print(f"fewer than {args.min_cores} cores: gate skipped")
        return 0
    if ratio < args.min_ratio:
        print(f"{label}: speedup {ratio:.2f}x below required "
              f"{args.min_ratio:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
