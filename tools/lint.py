#!/usr/bin/env python3
"""Dynamite project lint: mechanical invariants clang-tidy can't express.

Scans src/ (C++ sources and headers) for project-rule violations:

  raw-assert        no raw assert() — use DYNAMITE_CHECK / DYNAMITE_DCHECK
                    (util/check.h), which survive NDEBUG and print file:line.
  raw-print         no printf/fprintf/vprintf/vfprintf stream output outside
                    util/debug_log.h — route diagnostics through
                    debug_log::Logf (gated tracing) or debug_log::Errorf
                    (unconditional), so lines never tear across threads.
                    Buffer formatters (snprintf, vsnprintf) are fine.
  raw-thread        no naked std::thread outside util/thread_pool.h — use
                    the pool; ad-hoc threads bypass the noexcept trampoline
                    and the crash-free failure semantics.
  raw-mutex         no std::mutex / std::shared_mutex /
                    std::condition_variable / std::lock_guard /
                    std::unique_lock / std::scoped_lock outside
                    util/thread_annotations.h — use dynamite::Mutex /
                    MutexLock / CondVar so every critical section is visible
                    to clang's -Wthread-safety analysis.
  bare-suppression  every DYNAMITE_NO_THREAD_SAFETY_ANALYSIS must carry a
                    justification comment on the same line or the line above
                    (the suppression policy; see src/util/README.md).
  raw-chrono        no std::chrono outside util/{timer,deadline,trace} — use
                    Timer / Deadline for measurement and trace spans for
                    attribution; scattered clocks fragment the time axis the
                    trace layer depends on.
  adhoc-counter     no ad-hoc std::atomic tally members (…hits_, …misses_,
                    …fallbacks_, …) outside util/{failpoint,metrics,trace} —
                    register a metrics::Counter so the tally shows up in
                    Session::Metrics() instead of a private field.

Findings print as `path:line: [rule] message` (clickable in editors and CI
logs). Exit status 1 if anything is found, 0 on a clean tree.

Usage:
  tools/lint.py                 # lint src/ of the repo containing this script
  tools/lint.py --root DIR      # lint DIR/src instead
  tools/lint.py --self-test     # run the embedded rule tests and exit
"""

import argparse
import os
import re
import sys

# Each rule: (id, regex, message, set of path suffixes exempt from the rule).
# Paths are repo-relative with forward slashes.
RULES = [
    (
        "raw-assert",
        re.compile(r"(?<![A-Za-z0-9_])assert\s*\("),
        "raw assert() compiles out under NDEBUG; use DYNAMITE_CHECK or "
        "DYNAMITE_DCHECK (util/check.h)",
        set(),
    ),
    (
        "raw-print",
        re.compile(r"(?<![A-Za-z0-9_])(?:std::)?v?f?printf\s*\("),
        "stream output outside util/debug_log.h tears across threads; use "
        "debug_log::Logf or debug_log::Errorf",
        {"src/util/debug_log.h"},
    ),
    (
        "raw-thread",
        re.compile(r"std::thread(?![A-Za-z0-9_])"),
        "naked std::thread bypasses the pool's noexcept trampoline; use "
        "ThreadPool (util/thread_pool.h)",
        {"src/util/thread_pool.h"},
    ),
    (
        "raw-mutex",
        re.compile(
            r"std::(?:mutex|shared_mutex|timed_mutex|recursive_mutex|"
            r"condition_variable(?:_any)?|lock_guard|unique_lock|"
            r"scoped_lock|shared_lock)(?![A-Za-z0-9_])"
        ),
        "unannotated std synchronization is invisible to -Wthread-safety; "
        "use dynamite::Mutex / MutexLock / SharedMutex / CondVar "
        "(util/thread_annotations.h)",
        {"src/util/thread_annotations.h"},
    ),
    (
        "raw-chrono",
        re.compile(r"std::chrono(?![A-Za-z0-9_])"),
        "raw std::chrono fragments the time axis; use Timer (util/timer.h), "
        "Deadline (util/deadline.h), or a trace span (util/trace.h)",
        {
            "src/util/timer.h",
            "src/util/deadline.h",
            "src/util/trace.h",
            "src/util/trace.cc",
        },
    ),
    (
        "adhoc-counter",
        re.compile(
            r"std::atomic<[^>]*>\s+\w*(?:hits|misses|fallbacks|refreshes|"
            r"lookups|builds|retries|drops)_?\s*[{;=]"
        ),
        "ad-hoc atomic tallies are invisible to Session::Metrics(); use "
        "metrics::GetCounter / DYNAMITE_METRIC_INC (util/metrics.h)",
        {
            "src/util/failpoint.h",
            "src/util/metrics.h",
            "src/util/trace.h",
            "src/util/trace.cc",
        },
    ),
]

SUPPRESSION = "DYNAMITE_NO_THREAD_SAFETY_ANALYSIS"
SUPPRESSION_EXEMPT = {"src/util/thread_annotations.h"}  # the #define itself

CPP_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

_STRING_OR_CHAR = re.compile(
    r'"(?:[^"\\\n]|\\.)*"'  # string literal
    r"|'(?:[^'\\\n]|\\.)*'"  # char literal
)
_LINE_COMMENT = re.compile(r"//.*$")


def strip_code_line(line, in_block_comment):
    """Removes comments and literal contents from one line of C++.

    Returns (code_only_line, still_in_block_comment). Literal text is blanked
    rather than removed so column positions stay meaningful. This is a
    line-based approximation (no raw strings, no line continuations), which
    is exactly enough for token-presence rules.
    """
    out = []
    i = 0
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        m = _STRING_OR_CHAR.match(line, i)
        if m:
            out.append('""' if line[i] == '"' else "''")
            i = m.end()
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block_comment


def has_comment(line):
    """True if the raw line contains (or continues) a comment with text."""
    return "//" in line or "/*" in line or "*" == line.strip()[:1]


def lint_file(rel_path, text):
    """Yields (line_number, rule_id, message) findings for one file."""
    findings = []
    lines = text.split("\n")
    in_block = False
    prev_raw = ""
    for lineno, raw in enumerate(lines, start=1):
        code, in_block = strip_code_line(raw, in_block)
        for rule_id, pattern, message, exempt in RULES:
            if rel_path in exempt:
                continue
            # static_assert / DYNAMITE_DCHECK-style prefixed identifiers are
            # excluded by each pattern's lookbehind.
            for _m in pattern.finditer(code):
                findings.append((lineno, rule_id, message))
        if SUPPRESSION in code and rel_path not in SUPPRESSION_EXEMPT:
            if not (has_comment(raw) or has_comment(prev_raw)):
                findings.append(
                    (
                        lineno,
                        "bare-suppression",
                        f"{SUPPRESSION} without a justification comment on "
                        "this line or the line above (suppression policy: "
                        "src/util/README.md)",
                    )
                )
        prev_raw = raw
    return findings


def lint_tree(root):
    """Lints every C++ file under root/src; returns a list of finding strings."""
    src = os.path.join(root, "src")
    results = []
    for dirpath, _dirnames, filenames in sorted(os.walk(src)):
        for name in sorted(filenames):
            if not name.endswith(CPP_EXTENSIONS):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                text = f.read()
            for lineno, rule_id, message in lint_file(rel, text):
                results.append(f"{rel}:{lineno}: [{rule_id}] {message}")
    return results


# ------------------------------------------------------------- self-test ---

# (name, path the snippet pretends to live at, snippet, expected rule ids)
SELF_TEST_CASES = [
    ("raw assert flagged", "src/a/x.cc", "assert(x > 0);", ["raw-assert"]),
    ("static_assert allowed", "src/a/x.cc", "static_assert(sizeof(int) == 4);", []),
    ("DCHECK allowed", "src/a/x.cc", "DYNAMITE_DCHECK(a <= b);", []),
    ("assert in comment allowed", "src/a/x.cc", "// assert(x) is banned", []),
    ("assert in string allowed", "src/a/x.cc", 'log("assert(x)");', []),
    ("assert in block comment allowed", "src/a/x.cc", "/*\n assert(x);\n*/", []),
    ("fprintf flagged", "src/a/x.cc", 'std::fprintf(stderr, "boom\\n");', ["raw-print"]),
    ("printf flagged", "src/a/x.cc", 'printf("%d", 1);', ["raw-print"]),
    ("vfprintf flagged", "src/a/x.cc", "std::vfprintf(stderr, f, args);", ["raw-print"]),
    ("snprintf allowed", "src/a/x.cc", "std::snprintf(buf, sizeof(buf), f);", []),
    ("vsnprintf allowed", "src/a/x.cc", "std::vsnprintf(b, n, f, a);", []),
    (
        "fprintf allowed in debug_log.h",
        "src/util/debug_log.h",
        "std::vfprintf(stderr, format, args);",
        [],
    ),
    ("std::thread flagged", "src/a/x.cc", "std::thread t(fn);", ["raw-thread"]),
    (
        "std::thread allowed in thread_pool.h",
        "src/util/thread_pool.h",
        "std::vector<std::thread> threads_;",
        [],
    ),
    ("std::mutex flagged", "src/a/x.cc", "std::mutex mu_;", ["raw-mutex"]),
    ("std::lock_guard flagged", "src/a/x.cc", "std::lock_guard<T> l(mu);", ["raw-mutex"]),
    ("std::condition_variable flagged", "src/a/x.cc", "std::condition_variable cv;", ["raw-mutex"]),
    ("std::shared_lock flagged", "src/a/x.cc", "std::shared_lock<T> l(mu);", ["raw-mutex"]),
    (
        "std::mutex allowed in thread_annotations.h",
        "src/util/thread_annotations.h",
        "std::mutex mu_;",
        [],
    ),
    ("dynamite Mutex allowed", "src/a/x.cc", "Mutex mu_;\nMutexLock lock(mu_);", []),
    (
        "bare suppression flagged",
        "src/a/x.cc",
        "void Get() DYNAMITE_NO_THREAD_SAFETY_ANALYSIS {",
        ["bare-suppression"],
    ),
    (
        "justified suppression allowed (line above)",
        "src/a/x.cc",
        "// Lock-free readers synchronize via release/acquire on size_.\n"
        "void Get() DYNAMITE_NO_THREAD_SAFETY_ANALYSIS {",
        [],
    ),
    (
        "justified suppression allowed (same line)",
        "src/a/x.cc",
        "void Get() DYNAMITE_NO_THREAD_SAFETY_ANALYSIS {  // reads are acquire-published",
        [],
    ),
    ("std::chrono flagged", "src/a/x.cc",
     "auto t = std::chrono::steady_clock::now();", ["raw-chrono"]),
    ("std::chrono allowed in timer.h", "src/util/timer.h",
     "std::chrono::steady_clock::time_point start_;", []),
    ("std::chrono allowed in trace.cc", "src/util/trace.cc",
     "return std::chrono::steady_clock::now().time_since_epoch().count();", []),
    ("std::chrono in comment allowed", "src/a/x.cc",
     "// std::chrono is banned here", []),
    ("adhoc counter flagged", "src/a/x.cc",
     "std::atomic<uint64_t> cache_hits_{0};", ["adhoc-counter"]),
    ("adhoc counter assignment flagged", "src/a/x.cc",
     "std::atomic<size_t> fallbacks = 0;", ["adhoc-counter"]),
    ("adhoc counter allowed in failpoint.h", "src/util/failpoint.h",
     "std::atomic<uint64_t> hits_{0};", []),
    ("non-tally atomic allowed", "src/a/x.cc",
     "std::atomic<uint64_t> size_{0};", []),
    (
        "two findings on one line",
        "src/a/x.cc",
        'if (!x) { assert(x); fprintf(stderr, "x\\n"); }',
        ["raw-assert", "raw-print"],
    ),
]


def self_test():
    failures = 0
    for name, path, snippet, expected in SELF_TEST_CASES:
        got = [rule for _ln, rule, _msg in lint_file(path, snippet)]
        if got != expected:
            print(f"FAIL {name}: expected {expected}, got {got}")
            failures += 1
        else:
            print(f"ok   {name}")
    print(f"{len(SELF_TEST_CASES) - failures}/{len(SELF_TEST_CASES)} self-test cases passed")
    return failures == 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script's directory)",
    )
    parser.add_argument(
        "--self-test", action="store_true", help="run embedded rule tests and exit"
    )
    args = parser.parse_args()

    if args.self_test:
        sys.exit(0 if self_test() else 1)

    findings = lint_tree(args.root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        sys.exit(1)
    print("lint: clean")


if __name__ == "__main__":
    main()
