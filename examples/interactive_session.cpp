// Example: interactive mode (§5, Appendix B) on the paper's Example 10,
// through dynamite::Session::SynthesizeInteractive (src/api/session.h).
//
// A single-record example is ambiguous between the join program and the
// cross-product program; Dynamite finds a distinguishing input, asks the
// "user" (an oracle here) for its output, and converges to the join. The
// Session shares one Datalog engine between the distinguishing-input
// probes and the final migration, and the oracle may answer kCancelled to
// stop the questioning gracefully (partial stats, best program so far).
//
//   $ ./interactive_session

#include <cstdio>

#include "api/session.h"
#include "schema/schema_builder.h"

using namespace dynamite;

namespace {
RecordNode Emp(const char* name, int dept) {
  RecordNode r;
  r.type = "Employee";
  r.prims = {{"ename", Value::String(name)}, {"edept", Value::Int(dept)}};
  return r;
}
RecordNode Dept(int id, const char* name) {
  RecordNode r;
  r.type = "Department";
  r.prims = {{"did", Value::Int(id)}, {"dname", Value::String(name)}};
  return r;
}
}  // namespace

int main() {
  Schema source = RelationalSchemaBuilder()
                      .AddTable("Employee", {{"ename", PrimitiveType::kString},
                                             {"edept", PrimitiveType::kInt}})
                      .AddTable("Department", {{"did", PrimitiveType::kInt},
                                               {"dname", PrimitiveType::kString}})
                      .Build()
                      .ValueOrDie();
  Schema target = RelationalSchemaBuilder()
                      .AddTable("WorksIn", {{"w_name", PrimitiveType::kString},
                                            {"w_dept", PrimitiveType::kString}})
                      .Build()
                      .ValueOrDie();
  Program golden =
      Program::Parse("WorksIn(n, d) :- Employee(n, x), Department(x, d).").ValueOrDie();

  Session session = Session::Create(source, target).ValueOrDie();

  // The ambiguous starting example: Employee(Alice, 11), Department(11, CS)
  // -> WorksIn(Alice, CS).
  Example initial;
  initial.input.roots = {Emp("Alice", 11), Dept(11, "CS")};
  initial.output = session.Migrate(golden, initial.input).ValueOrDie();

  // A validation pool the distinguishing input is drawn from.
  RecordForest pool;
  pool.roots = {Emp("Alice", 11), Emp("Bob", 12), Dept(11, "CS"), Dept(12, "EE")};

  // The "user": answers queries by consulting the intended transformation.
  // (A real user could return Status::Cancelled(...) to stop answering;
  // the session then returns the best program so far with partial stats.)
  size_t questions = 0;
  Oracle oracle = [&](const RecordForest& input) -> Result<RecordForest> {
    ++questions;
    std::printf("Dynamite asks about a distinguishing input with %zu records...\n",
                input.roots.size());
    return session.Migrate(golden, input);
  };

  auto result = session.SynthesizeInteractive(initial, pool, oracle,
                                              RunContext::WithTimeout(120));
  if (!result.ok()) {
    std::fprintf(stderr, "interactive synthesis failed (%s): %s\n",
                 StatusCodeToString(result.status().code()),
                 result.status().message().c_str());
    return 1;
  }
  std::printf("\nConverged after %zu round(s), %zu user quer%s.\n", result->rounds,
              result->queries, result->queries == 1 ? "y" : "ies");
  std::printf("Final program:\n%s\n", result->result.program.ToString().c_str());

  // Show that the result is the join, not the cross product.
  RecordForest probe;
  probe.roots = {Emp("X", 1), Emp("Y", 2), Dept(1, "D1"), Dept(2, "D2")};
  RecordForest out = session.Migrate(result->result.program, probe).ValueOrDie();
  std::printf("On a 2x2 probe instance the program produces %zu WorksIn rows "
              "(join => 2, cross product => 4).\n",
              out.roots.size());
  return 0;
}
