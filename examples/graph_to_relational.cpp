// Example: migrating a property graph (social follow graph, like the
// Tencent Weibo benchmark) into a relational table, from a 2-node example,
// using dynamite::Session (src/api/session.h) — synthesis and migration
// share one engine, and errors come back as typed ErrorCodes.
//
//   $ ./graph_to_relational

#include <cstdio>

#include "api/session.h"
#include "instance/graph.h"
#include "instance/relational.h"
#include "schema/schema_builder.h"

using namespace dynamite;

int main() {
  // Source: a graph of users with weighted "follows" edges.
  Schema source = GraphSchemaBuilder()
                      .AddNodeType("User", {{"uid", PrimitiveType::kInt},
                                            {"uname", PrimitiveType::kString}})
                      .AddEdgeType("Follows", {{"weight", PrimitiveType::kInt}}, "f")
                      .Build()
                      .ValueOrDie();
  // Target: one table of (follower name, followee name, weight).
  Schema target = RelationalSchemaBuilder()
                      .AddTable("FollowTable", {{"follower", PrimitiveType::kString},
                                                {"followee", PrimitiveType::kString},
                                                {"weight", PrimitiveType::kInt}})
                      .Build()
                      .ValueOrDie();

  // Example graph: ann -> bob (3), bob -> cat (5).
  GraphInstance example_graph;
  example_graph.AddNode(
      GraphNode{"User", {{"uid", Value::Int(1)}, {"uname", Value::String("ann")}}});
  example_graph.AddNode(
      GraphNode{"User", {{"uid", Value::Int(2)}, {"uname", Value::String("bob")}}});
  example_graph.AddNode(
      GraphNode{"User", {{"uid", Value::Int(3)}, {"uname", Value::String("cat")}}});
  example_graph.AddEdge(GraphEdge{"Follows", 1, 2, {{"weight", Value::Int(3)}}});
  example_graph.AddEdge(GraphEdge{"Follows", 2, 3, {{"weight", Value::Int(5)}}});

  // Expected relational output for the example.
  RelationalInstance example_table;
  example_table.DeclareTable(target, "FollowTable");
  example_table.Insert("FollowTable", Tuple({Value::String("ann"), Value::String("bob"),
                                             Value::Int(3)}));
  example_table.Insert("FollowTable", Tuple({Value::String("bob"), Value::String("cat"),
                                             Value::Int(5)}));

  Example example;
  example.input = example_graph.ToForest(source).ValueOrDie();
  example.output = example_table.ToForest(target).ValueOrDie();

  Session session = Session::Create(source, target).ValueOrDie();
  auto result = session.Synthesize(example, RunContext::WithTimeout(60));
  if (!result.ok()) {
    std::fprintf(stderr, "synthesis failed (%s): %s\n",
                 StatusCodeToString(result.status().code()),
                 result.status().message().c_str());
    return 1;
  }
  std::printf("Synthesized mapping:\n%s\n", result->program.ToString().c_str());

  // Migrate a bigger graph with the same session: the shared migration
  // engine keeps its join indexes and compiled rules across Migrate calls.
  GraphInstance big;
  const char* names[] = {"u0", "u1", "u2", "u3", "u4"};
  for (int i = 0; i < 5; ++i) {
    big.AddNode(GraphNode{
        "User", {{"uid", Value::Int(i)}, {"uname", Value::String(names[i])}}});
  }
  for (int i = 0; i < 5; ++i) {
    big.AddEdge(GraphEdge{"Follows", i, (i + 2) % 5, {{"weight", Value::Int(i * 10)}}});
  }
  RecordForest migrated =
      session.Migrate(result->program, big.ToForest(source).ValueOrDie()).ValueOrDie();
  RelationalInstance out = RelationalInstance::FromForest(migrated, target).ValueOrDie();
  std::printf("Migrated table:\n%s\n", out.ToString().c_str());
  return 0;
}
