// Example: the filtering extension (§5) — the target keeps a subset of the
// source rows, selected by an equality predicate that Dynamite synthesizes
// as a constant in the rule body. Stage options (here: filtering) are set
// once on SessionOptions and the whole pipeline runs through
// dynamite::Session (src/api/session.h).
//
//   $ ./filtering_migration

#include <cstdio>

#include "api/session.h"
#include "instance/relational.h"
#include "schema/schema_builder.h"

using namespace dynamite;

int main() {
  Schema source = RelationalSchemaBuilder()
                      .AddTable("orders", {{"o_id", PrimitiveType::kInt},
                                           {"o_item", PrimitiveType::kString},
                                           {"o_status", PrimitiveType::kString}})
                      .Build()
                      .ValueOrDie();
  Schema target = RelationalSchemaBuilder()
                      .AddTable("shipped", {{"s_id", PrimitiveType::kInt},
                                            {"s_item", PrimitiveType::kString},
                                            {"s_status", PrimitiveType::kString}})
                      .Build()
                      .ValueOrDie();

  RelationalInstance input;
  input.DeclareTable(source, "orders");
  input.Insert("orders", Tuple({Value::Int(1), Value::String("mug"),
                                Value::String("shipped")}));
  input.Insert("orders", Tuple({Value::Int(2), Value::String("desk"),
                                Value::String("pending")}));
  input.Insert("orders", Tuple({Value::Int(3), Value::String("lamp"),
                                Value::String("shipped")}));
  input.Insert("orders", Tuple({Value::Int(4), Value::String("chair"),
                                Value::String("cancelled")}));

  RelationalInstance output;
  output.DeclareTable(target, "shipped");
  output.Insert("shipped", Tuple({Value::Int(1), Value::String("mug"),
                                  Value::String("shipped")}));
  output.Insert("shipped", Tuple({Value::Int(3), Value::String("lamp"),
                                  Value::String("shipped")}));

  Example example;
  example.input = input.ToForest(source).ValueOrDie();
  example.output = output.ToForest(target).ValueOrDie();

  SessionOptions options;
  options.synthesis.enable_filtering = true;  // allow constants in hole domains
  Session session = Session::Create(source, target, options).ValueOrDie();
  auto result = session.Synthesize(example, RunContext::WithTimeout(60));
  if (!result.ok()) {
    std::fprintf(stderr, "synthesis failed (%s): %s\n",
                 StatusCodeToString(result.status().code()),
                 result.status().message().c_str());
    return 1;
  }
  std::printf("Synthesized filtering mapping:\n%s\n", result->program.ToString().c_str());

  RelationalInstance big;
  big.DeclareTable(source, "orders");
  const char* statuses[] = {"shipped", "pending", "returned"};
  for (int i = 0; i < 9; ++i) {
    big.Insert("orders", Tuple({Value::Int(100 + i),
                                Value::String("item" + std::to_string(i)),
                                Value::String(statuses[i % 3])}));
  }
  RecordForest migrated =
      session.Migrate(result->program, big.ToForest(source).ValueOrDie()).ValueOrDie();
  RelationalInstance out = RelationalInstance::FromForest(migrated, target).ValueOrDie();
  std::printf("Migrated (only shipped rows kept):\n%s\n", out.ToString().c_str());
  return 0;
}
