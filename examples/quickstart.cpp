// Quickstart: the paper's motivating example (§2), end to end.
//
// A document database of universities with nested admission info is
// migrated to a flat Admission collection. Dynamite synthesizes the
// Datalog migration program from a four-record example, then executes it
// on a larger instance.
//
//   $ ./quickstart

#include <cstdio>

#include "instance/document.h"
#include "migrate/migrator.h"
#include "schema/schema_builder.h"
#include "synth/synthesizer.h"

using namespace dynamite;

int main() {
  // 1. Schemas. Source: Univ documents with nested Admit; target: flat
  //    Admission documents.
  Schema source = DocumentSchemaBuilder()
                      .AddCollection("Univ", {{"id", PrimitiveType::kInt},
                                              {"name", PrimitiveType::kString}})
                      .AddCollection("Admit", {{"uid", PrimitiveType::kInt},
                                               {"count", PrimitiveType::kInt}},
                                     /*parent=*/"Univ")
                      .Build()
                      .ValueOrDie();
  Schema target = DocumentSchemaBuilder()
                      .AddCollection("Admission", {{"grad", PrimitiveType::kString},
                                                   {"ug", PrimitiveType::kString},
                                                   {"num", PrimitiveType::kInt}})
                      .Build()
                      .ValueOrDie();

  // 2. The input-output example of Figure 2, as JSON.
  DocumentInstance input_docs =
      DocumentInstance::FromJsonText(R"({
        "Univ": [
          {"id": 1, "name": "U1", "Admit": [{"uid": 1, "count": 10},
                                            {"uid": 2, "count": 50}]},
          {"id": 2, "name": "U2", "Admit": [{"uid": 2, "count": 20},
                                            {"uid": 1, "count": 40}]}
        ]})")
          .ValueOrDie();
  DocumentInstance output_docs =
      DocumentInstance::FromJsonText(R"({
        "Admission": [
          {"grad": "U1", "ug": "U1", "num": 10},
          {"grad": "U1", "ug": "U2", "num": 50},
          {"grad": "U2", "ug": "U2", "num": 20},
          {"grad": "U2", "ug": "U1", "num": 40}
        ]})")
          .ValueOrDie();

  Example example;
  example.input = input_docs.ToForest(source).ValueOrDie();
  example.output = output_docs.ToForest(target).ValueOrDie();

  // 3. Synthesize the Datalog migration program.
  Synthesizer synthesizer(source, target);
  auto result = synthesizer.Synthesize(example);
  if (!result.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Synthesized in %.3fs after %zu candidate(s), search space %.0f:\n\n%s\n",
              result->seconds, result->iterations, result->search_space,
              result->program.ToString().c_str());

  // 4. Run the program on a larger database.
  DocumentInstance big = DocumentInstance::FromJsonText(R"({
        "Univ": [
          {"id": 1, "name": "MIT",      "Admit": [{"uid": 2, "count": 7},
                                                  {"uid": 3, "count": 12}]},
          {"id": 2, "name": "Stanford", "Admit": [{"uid": 1, "count": 9}]},
          {"id": 3, "name": "Berkeley", "Admit": [{"uid": 1, "count": 4},
                                                  {"uid": 2, "count": 6}]}
        ]})")
                              .ValueOrDie();
  Migrator migrator(source, target);
  MigrationStats stats;
  RecordForest migrated =
      migrator.Migrate(result->program, big.ToForest(source).ValueOrDie(), &stats)
          .ValueOrDie();
  DocumentInstance out = DocumentInstance::FromForest(migrated, target).ValueOrDie();

  std::printf("Migrated %zu source records -> %zu target records in %.3fs:\n%s\n",
              stats.source_records, stats.target_records, stats.TotalSeconds(),
              out.ToJson().Pretty().c_str());
  return 0;
}
