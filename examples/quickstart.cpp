// Quickstart: the paper's motivating example (§2), end to end on the
// unified dynamite::Session pipeline API (src/api/session.h).
//
// A document database of universities with nested admission info is
// migrated to a flat Admission collection. One Session owns the whole
// pipeline: it synthesizes the Datalog migration program from a
// four-record example, then executes it on a larger instance with the
// same engine — a single SynthesizeAndMigrate call under one budget.
//
//   $ ./quickstart

#include <cstdio>

#include "api/session.h"
#include "instance/document.h"
#include "schema/schema_builder.h"

using namespace dynamite;

int main() {
  // 1. Schemas. Source: Univ documents with nested Admit; target: flat
  //    Admission documents.
  Schema source = DocumentSchemaBuilder()
                      .AddCollection("Univ", {{"id", PrimitiveType::kInt},
                                              {"name", PrimitiveType::kString}})
                      .AddCollection("Admit", {{"uid", PrimitiveType::kInt},
                                               {"count", PrimitiveType::kInt}},
                                     /*parent=*/"Univ")
                      .Build()
                      .ValueOrDie();
  Schema target = DocumentSchemaBuilder()
                      .AddCollection("Admission", {{"grad", PrimitiveType::kString},
                                                   {"ug", PrimitiveType::kString},
                                                   {"num", PrimitiveType::kInt}})
                      .Build()
                      .ValueOrDie();

  // 2. The input-output example of Figure 2, as JSON.
  DocumentInstance input_docs =
      DocumentInstance::FromJsonText(R"({
        "Univ": [
          {"id": 1, "name": "U1", "Admit": [{"uid": 1, "count": 10},
                                            {"uid": 2, "count": 50}]},
          {"id": 2, "name": "U2", "Admit": [{"uid": 2, "count": 20},
                                            {"uid": 1, "count": 40}]}
        ]})")
          .ValueOrDie();
  DocumentInstance output_docs =
      DocumentInstance::FromJsonText(R"({
        "Admission": [
          {"grad": "U1", "ug": "U1", "num": 10},
          {"grad": "U1", "ug": "U2", "num": 50},
          {"grad": "U2", "ug": "U2", "num": 20},
          {"grad": "U2", "ug": "U1", "num": 40}
        ]})")
          .ValueOrDie();

  Example example;
  example.input = input_docs.ToForest(source).ValueOrDie();
  example.output = output_docs.ToForest(target).ValueOrDie();

  // 3. The larger database the synthesized program will run on.
  DocumentInstance big = DocumentInstance::FromJsonText(R"({
        "Univ": [
          {"id": 1, "name": "MIT",      "Admit": [{"uid": 2, "count": 7},
                                                  {"uid": 3, "count": 12}]},
          {"id": 2, "name": "Stanford", "Admit": [{"uid": 1, "count": 9}]},
          {"id": 3, "name": "Berkeley", "Admit": [{"uid": 1, "count": 4},
                                                  {"uid": 2, "count": 6}]}
        ]})")
                              .ValueOrDie();

  // 4. One Session, one call: synthesize from the example, migrate the big
  //    instance, all under a 60-second budget with live progress.
  Session session = Session::Create(source, target).ValueOrDie();
  RunContext ctx = RunContext::WithTimeout(60);
  ctx.observer = [](const ProgressEvent& e) {
    std::fprintf(stderr, "[%s] %s iters=%zu coverage=%.3f t=%.2fs\n",
                 PhaseToString(e.phase), e.detail.c_str(), e.iterations, e.coverage,
                 e.elapsed_seconds);
  };
  auto run = session.SynthesizeAndMigrate(example, big.ToForest(source).ValueOrDie(), ctx);
  if (!run.ok()) {
    // Typed errors: callers branch on the code, not the message string.
    std::fprintf(stderr, "pipeline failed (%s): %s\n",
                 StatusCodeToString(run.status().code()),
                 run.status().message().c_str());
    return 1;
  }
  std::printf("Synthesized in %.3fs after %zu candidate(s), search space %.0f:\n\n%s\n",
              run->synthesis.seconds, run->synthesis.iterations,
              run->synthesis.search_space, run->synthesis.program.ToString().c_str());

  DocumentInstance out = DocumentInstance::FromForest(run->migrated, target).ValueOrDie();
  std::printf("Migrated %zu source records -> %zu target records in %.3fs:\n%s\n",
              run->migration.source_records, run->migration.target_records,
              run->migration.TotalSeconds(), out.ToJson().Pretty().c_str());
  return 0;
}
