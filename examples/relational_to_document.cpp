// Example: denormalizing a relational database into nested documents —
// hosts with their listings grouped under them (the Airbnb-1 scenario),
// exercising target-side nesting and the connector/grouping machinery,
// through dynamite::Session (src/api/session.h).
//
//   $ ./relational_to_document

#include <cstdio>

#include "api/session.h"
#include "instance/document.h"
#include "instance/relational.h"
#include "schema/schema_builder.h"

using namespace dynamite;

int main() {
  Schema source = RelationalSchemaBuilder()
                      .AddTable("hosts", {{"h_id", PrimitiveType::kInt},
                                          {"h_name", PrimitiveType::kString}})
                      .AddTable("listings", {{"l_id", PrimitiveType::kInt},
                                             {"l_title", PrimitiveType::kString},
                                             {"l_host", PrimitiveType::kInt},
                                             {"l_price", PrimitiveType::kInt}})
                      .Build()
                      .ValueOrDie();
  Schema target = DocumentSchemaBuilder()
                      .AddCollection("HostDoc", {{"host_name", PrimitiveType::kString}})
                      .AddCollection("Listing", {{"title", PrimitiveType::kString},
                                                 {"price", PrimitiveType::kInt}},
                                     /*parent=*/"HostDoc")
                      .Build()
                      .ValueOrDie();

  // Example: two hosts; maria owns two listings (so grouping is visible),
  // joe owns one.
  RelationalInstance tables;
  tables.DeclareTable(source, "hosts");
  tables.DeclareTable(source, "listings");
  tables.Insert("hosts", Tuple({Value::Int(1), Value::String("maria")}));
  tables.Insert("hosts", Tuple({Value::Int(2), Value::String("joe")}));
  tables.Insert("listings", Tuple({Value::Int(10), Value::String("loft"),
                                   Value::Int(1), Value::Int(80)}));
  tables.Insert("listings", Tuple({Value::Int(11), Value::String("studio"),
                                   Value::Int(1), Value::Int(55)}));
  // joe's listing reuses the title "loft" so that grouping listings by
  // title is visibly wrong on the example and Dynamite must group by host.
  tables.Insert("listings", Tuple({Value::Int(12), Value::String("loft"),
                                   Value::Int(2), Value::Int(95)}));

  DocumentInstance expected = DocumentInstance::FromJsonText(R"({
    "HostDoc": [
      {"host_name": "maria", "Listing": [{"title": "loft",   "price": 80},
                                         {"title": "studio", "price": 55}]},
      {"host_name": "joe",   "Listing": [{"title": "loft",   "price": 95}]}
    ]})")
                                  .ValueOrDie();

  Example example;
  example.input = tables.ToForest(source).ValueOrDie();
  example.output = expected.ToForest(target).ValueOrDie();

  Session session = Session::Create(source, target).ValueOrDie();
  auto result = session.Synthesize(example, RunContext::WithTimeout(60));
  if (!result.ok()) {
    std::fprintf(stderr, "synthesis failed (%s): %s\n",
                 StatusCodeToString(result.status().code()),
                 result.status().message().c_str());
    return 1;
  }
  std::printf("Synthesized mapping (note the shared grouping variable between\n"
              "the HostDoc and Listing heads):\n%s\n",
              result->program.ToString().c_str());

  // Apply to a fresh instance.
  RelationalInstance big;
  big.DeclareTable(source, "hosts");
  big.DeclareTable(source, "listings");
  for (int h = 0; h < 3; ++h) {
    big.Insert("hosts",
               Tuple({Value::Int(h), Value::String("host" + std::to_string(h))}));
  }
  for (int l = 0; l < 7; ++l) {
    big.Insert("listings",
               Tuple({Value::Int(100 + l), Value::String("flat" + std::to_string(l)),
                      Value::Int(l % 3), Value::Int(40 + 10 * l)}));
  }
  RecordForest migrated =
      session.Migrate(result->program, big.ToForest(source).ValueOrDie()).ValueOrDie();
  DocumentInstance out = DocumentInstance::FromForest(migrated, target).ValueOrDie();
  std::printf("Migrated documents:\n%s\n", out.ToJson().Pretty().c_str());
  return 0;
}
